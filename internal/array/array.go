// Package array composes N simulated SSDs into a rack-scale
// erasure-coded tier: m data + k parity shards per stripe, rotated
// RAID-style across the m+k devices of each group, with spare devices a
// background rebuild re-protects onto after a whole-device failure.
//
// The design splits the array into two deterministic levels. The
// cluster router plans everything up front from (configuration, failure
// schedule, foreground trace) alone — shard placement, degraded-read
// reconstruction, retry/backoff against transient outages, write
// redirection onto spares, and the throttled rebuild schedule — without
// ever consulting a simulated device latency. Each device then replays
// its planned trace as a fully independent simulation (its own engine,
// FTL, GC, interconnect), so devices run in parallel and results are
// byte-identical at any worker count. Array-level request latency is
// reassembled arithmetically: a request completes when the last of its
// shard operations completes, plus the router's own overheads.
package array

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Defaults for the router's timing knobs.
const (
	DefaultRouteLatency       = 2 * sim.Microsecond
	DefaultReconstructLatency = 10 * sim.Microsecond
	DefaultDetectLatency      = 100 * sim.Microsecond
	DefaultRetryMax           = 3
	DefaultRetryBackoff       = 10 * sim.Microsecond
)

// Config describes one erasure-coded array.
type Config struct {
	// Arch and Device configure every member SSD identically.
	Arch   ssd.Arch
	Device ssd.Config

	// Data and Parity are m and k: each stripe spreads m data shards and
	// k parity shards over the m+k devices of its group, rotating the
	// parity lanes RAID-5-style so no device is a dedicated parity disk.
	Data, Parity int
	// Groups is the number of independent m+k groups.
	Groups int
	// Spares is the number of hot spares appended after the groups.
	// Kills are mapped to spares in failure order; a kill beyond the
	// spare supply leaves its group unprotected (writes to the dead
	// shard are lost, reads reconstruct forever).
	Spares int

	// Seed drives churn placement and any seed-derived failure schedule.
	Seed int64
	// ChurnFraction pre-invalidates this fraction of each device's
	// logical space (bounded by free headroom) so GC has work to do.
	ChurnFraction float64

	// Failures is the whole-device failure schedule: permanent kills and
	// transient outages, applied at the array router. Devices themselves
	// keep simulating; the router just stops (or defers) routing to them.
	Failures []fault.DeviceEvent

	// RouteLatency is the router's fixed per-request overhead.
	RouteLatency sim.Time
	// ReconstructLatency is the decode cost added after the last of the
	// m surviving shards arrives on a degraded read.
	ReconstructLatency sim.Time
	// DetectLatency is how long a permanent kill stays undetected: reads
	// in the window burn the retry ladder before reconstructing; after
	// it the router reconstructs (or redirects) immediately.
	DetectLatency sim.Time
	// RetryMax and RetryBackoff bound the per-read retry ladder against
	// an unresponsive device: attempt i waits RetryBackoff<<(i-1), and
	// an exhausted ladder falls back to reconstruction.
	RetryMax     int
	RetryBackoff sim.Time

	// RebuildPagesPerSec throttles the background rebuild scheduler;
	// zero disables rebuild (spares still absorb redirected writes).
	RebuildPagesPerSec int

	// Check enables the per-device invariant checkers plus the
	// array-level checks (ack discipline, stripe conservation, rebuild
	// completeness).
	Check bool
	// Trace, when set, records per-device traces with a "devN/" track
	// prefix so the merged view stays unambiguous.
	Trace *trace.Config
	// Telemetry, when set, produces an array-level time-series summary:
	// windowed throughput/latency over the reassembled request stream
	// plus rebuild progress per window and rebuild start/end marks. The
	// series are computed arithmetically from joined per-device
	// completion times, so they are byte-identical at any parallelism.
	Telemetry *telemetry.Config
}

// WithDefaults fills zero timing knobs.
func (c Config) WithDefaults() Config {
	if c.RouteLatency == 0 {
		c.RouteLatency = DefaultRouteLatency
	}
	if c.ReconstructLatency == 0 {
		c.ReconstructLatency = DefaultReconstructLatency
	}
	if c.DetectLatency == 0 {
		c.DetectLatency = DefaultDetectLatency
	}
	if c.RetryMax == 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	return c
}

// Width returns the shard count per stripe, m+k.
func (c Config) Width() int { return c.Data + c.Parity }

// Devices returns the total device count, groups plus spares.
func (c Config) Devices() int { return c.Groups*c.Width() + c.Spares }

// StripesPerGroup returns how many stripes one group holds: one per
// device logical page, since every member contributes one shard (at its
// own LPN equal to the stripe index) to every stripe of its group.
func (c Config) StripesPerGroup() int64 { return c.Device.LogicalPages() }

// LogicalPages returns the array's exported LPN count: m data shards
// per stripe across every group.
func (c Config) LogicalPages() int64 {
	return int64(c.Groups) * c.StripesPerGroup() * int64(c.Data)
}

// Validate panics on malformed configuration, mirroring ssd.Config.
func (c Config) Validate() {
	c.Device.Validate()
	if c.Data < 1 || c.Parity < 1 {
		panic(fmt.Sprintf("array: need m>=1 data and k>=1 parity shards, got %d+%d", c.Data, c.Parity))
	}
	if c.Groups < 1 {
		panic("array: need at least one group")
	}
	if c.Spares < 0 {
		panic("array: negative spare count")
	}
	if c.RetryMax < 0 || c.RetryBackoff < 0 || c.RouteLatency < 0 ||
		c.ReconstructLatency < 0 || c.DetectLatency < 0 || c.RebuildPagesPerSec < 0 {
		panic("array: negative router parameter")
	}
	coded := c.Groups * c.Width()
	for _, e := range c.Failures {
		if e.Device >= coded {
			panic(fmt.Sprintf("array: failure event %v targets a spare or unknown device (coded devices: %d)", e, coded))
		}
	}
	// NewDeviceSchedule re-validates times and windows.
	fault.NewDeviceSchedule(c.Failures)
}

// shard is one placed shard: a device and the device-local LPN.
type shard struct {
	dev int
	lpn int64
}

// shardAt places lane `lane` (0..m-1 data, m..m+k-1 parity) of stripe t
// in group g: the rotation (lane+t) mod width walks parity around the
// group so load and rebuild work spread evenly.
func (c Config) shardAt(g int, t int64, lane int) shard {
	w := int64(c.Width())
	return shard{dev: g*c.Width() + int((int64(lane)+t)%w), lpn: t}
}

// laneOf inverts shardAt for a device's position within its group:
// which lane of stripe t lives on group-local device offset d.
func (c Config) laneOf(d int, t int64) int {
	w := int64(c.Width())
	return int((((int64(d) - t) % w) + w) % w)
}

// locate maps an array LPN to (group, stripe, data lane). Consecutive
// array LPNs fill consecutive data lanes of one stripe and then move to
// the next stripe, so sequential requests fan out across the group.
func (c Config) locate(a int64) (g int, t int64, lane int) {
	perGroup := c.StripesPerGroup() * int64(c.Data)
	g = int(a / perGroup)
	r := a % perGroup
	return g, r / int64(c.Data), int(r % int64(c.Data))
}
