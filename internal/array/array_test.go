package array

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// smallCfg builds a 2-group 2+1 array of tiny pnSSDs with one spare —
// big enough to exercise rotation, small enough to simulate in
// milliseconds.
func smallCfg() Config {
	dc := ssd.ScaledConfig()
	dc.Channels, dc.Ways = 2, 2
	dc.Geometry = flash.Geometry{Planes: 2, BlocksPerPlane: 4, PagesPerBlock: 8, PageSize: 4096}
	dc.LogicalUtilization = 0.75
	return Config{
		Arch:   ssd.ArchPnSSD,
		Device: dc,
		Data:   2, Parity: 1,
		Groups: 2,
		Spares: 1,
		Seed:   1,
	}
}

// mixedTrace builds an open-loop array trace: one request every
// `spacing`, every writeEvery-th a write, LPNs striding the footprint.
func mixedTrace(cfg Config, n, writeEvery int, spacing sim.Time) []host.Request {
	lpns := cfg.LogicalPages()
	reqs := make([]host.Request, n)
	for i := range reqs {
		kind := stats.Read
		if writeEvery > 0 && i%writeEvery == 0 {
			kind = stats.Write
		}
		reqs[i] = host.Request{
			Arrival: sim.Time(i) * spacing,
			Kind:    kind,
			LPN:     (int64(i) * 7) % lpns,
			Pages:   1,
		}
	}
	return reqs
}

func TestLayoutRotationAndRoundTrip(t *testing.T) {
	cfg := smallCfg()
	w := cfg.Width()
	for g := 0; g < cfg.Groups; g++ {
		for _, stripe := range []int64{0, 1, 5, cfg.StripesPerGroup() - 1} {
			seen := map[int]bool{}
			for lane := 0; lane < w; lane++ {
				s := cfg.shardAt(g, stripe, lane)
				if s.lpn != stripe {
					t.Fatalf("shard lpn %d != stripe %d", s.lpn, stripe)
				}
				if s.dev < g*w || s.dev >= (g+1)*w {
					t.Fatalf("shard dev %d outside group %d", s.dev, g)
				}
				if seen[s.dev] {
					t.Fatalf("stripe %d places two shards on dev %d", stripe, s.dev)
				}
				seen[s.dev] = true
				if got := cfg.laneOf(s.dev%w, stripe); got != lane {
					t.Fatalf("laneOf(%d,%d) = %d, want %d", s.dev%w, stripe, got, lane)
				}
			}
		}
	}
	// Parity must rotate: lane m's device for stripe 0 and 1 differ.
	if cfg.shardAt(0, 0, cfg.Data).dev == cfg.shardAt(0, 1, cfg.Data).dev {
		t.Fatal("parity does not rotate across stripes")
	}
	for _, a := range []int64{0, 1, 17, cfg.LogicalPages() - 1} {
		g, stripe, lane := cfg.locate(a)
		if lane >= cfg.Data || g >= cfg.Groups || stripe >= cfg.StripesPerGroup() {
			t.Fatalf("locate(%d) = (%d,%d,%d) out of range", a, g, stripe, lane)
		}
	}
}

func TestHealthyRunCompletesClean(t *testing.T) {
	cfg := smallCfg()
	cfg.Check = true
	reqs := mixedTrace(cfg, 200, 4, 10*sim.Microsecond)
	res := Run(cfg, reqs, 2)
	if err := res.Err(); err != nil {
		t.Fatalf("healthy run: %v", err)
	}
	if got := res.Metrics.TotalRequests(); got != 200 {
		t.Fatalf("recorded %d/200 requests", got)
	}
	r := res.RAS
	if r.DegradedReads != 0 || r.FailedReads != 0 || r.RouterRetries != 0 ||
		r.RedirectedWrites != 0 || r.LostWrites != 0 || r.RebuildPages != 0 {
		t.Fatalf("healthy run touched failure paths: %s", r)
	}
	if res.Metrics.MeanLatency() <= cfg.RouteLatency {
		t.Fatalf("mean latency %v implausibly small", res.Metrics.MeanLatency())
	}
}

// Killing one device of an m+k group mid-trace must yield zero failed
// host reads: reads of its shards reconstruct from survivors or serve
// from the rebuilt spare, writes redirect, and the rebuild re-protects
// every stripe — all under the array invariant checker.
func TestSingleKillZeroFailedReads(t *testing.T) {
	cfg := smallCfg()
	cfg.Check = true
	cfg.RebuildPagesPerSec = 200_000
	kill := 1 * sim.Millisecond
	cfg.Failures = []fault.DeviceEvent{{Device: 0, At: kill}}
	reqs := mixedTrace(cfg, 400, 4, 10*sim.Microsecond)
	res := Run(cfg, reqs, 4)
	if err := res.Err(); err != nil {
		t.Fatalf("killed run: %v", err)
	}
	r := res.RAS
	if r.FailedReads != 0 {
		t.Fatalf("FailedReads = %d, want 0 (single kill in 2+1)", r.FailedReads)
	}
	if r.DegradedReads == 0 {
		t.Fatal("no degraded reads despite mid-trace kill")
	}
	if r.RedirectedWrites == 0 {
		t.Fatal("no writes redirected to the spare")
	}
	if got := r.RebuildPages + r.RebuildSkipped; got != cfg.StripesPerGroup() {
		t.Fatalf("rebuild covered %d stripes, want %d", got, cfg.StripesPerGroup())
	}
	if res.RebuildTime <= 0 {
		t.Fatalf("RebuildTime = %v", res.RebuildTime)
	}
	if r.DoubleAcks != 0 {
		t.Fatalf("DoubleAcks = %d", r.DoubleAcks)
	}
	if res.Metrics.TotalRequests() != 400 {
		t.Fatalf("recorded %d/400 requests", res.Metrics.TotalRequests())
	}
}

// The same run must be byte-identical at any parallelism: all routing
// is planned open-loop and reassembly is an arithmetic join.
func TestRunParallelismInvariant(t *testing.T) {
	cfg := smallCfg()
	cfg.Check = true
	cfg.RebuildPagesPerSec = 200_000
	cfg.Failures = []fault.DeviceEvent{
		{Device: 3, At: 800 * sim.Microsecond},
		{Device: 1, At: 200 * sim.Microsecond, Transient: true, Until: 500 * sim.Microsecond},
	}
	reqs := mixedTrace(cfg, 300, 5, 8*sim.Microsecond)
	digest := func(res *Result) string {
		return fmt.Sprintf("%s|%v|%v|%v|%v|%d|%v",
			res.RAS, res.Metrics.MeanLatency(), res.Metrics.Combined().P99(),
			res.SimTime, res.RebuildTime, res.Incomplete, res.Metrics.KIOPS())
	}
	want := digest(Run(cfg, reqs, 1))
	for _, par := range []int{2, 8} {
		if got := digest(Run(cfg, reqs, par)); got != want {
			t.Fatalf("parallel=%d diverged:\n got %s\nwant %s", par, got, want)
		}
	}
}

// A transient outage retries with backoff and resumes on the same
// device; reads that outlast the ladder reconstruct instead.
func TestTransientOutageRetries(t *testing.T) {
	cfg := smallCfg()
	cfg.Check = true
	// A long window: reads early in it exhaust the ladder (70us by
	// default) and reconstruct; reads near its end retry onto the
	// device.
	cfg.Failures = []fault.DeviceEvent{
		{Device: 2, At: 100 * sim.Microsecond, Transient: true, Until: 1 * sim.Millisecond},
	}
	reqs := mixedTrace(cfg, 300, 0, 5*sim.Microsecond) // reads only
	res := Run(cfg, reqs, 2)
	if err := res.Err(); err != nil {
		t.Fatalf("outage run: %v", err)
	}
	r := res.RAS
	if r.RouterRetries == 0 {
		t.Fatal("no router retries during a transient outage")
	}
	if r.RetryExhausted == 0 || r.DegradedReads == 0 {
		t.Fatalf("long outage should exhaust some ladders: %s", r)
	}
	if r.FailedReads != 0 {
		t.Fatalf("FailedReads = %d", r.FailedReads)
	}
}

// With no spare, writes to a dead device are lost but the stripes stay
// readable through the survivors.
func TestKillWithoutSpareLosesWritesNotReads(t *testing.T) {
	cfg := smallCfg()
	cfg.Spares = 0
	cfg.Check = true
	cfg.Failures = []fault.DeviceEvent{{Device: 4, At: 0}}
	// writeEvery=5: a multiple of the group width here would alias the
	// write stride with the shard rotation and skip device 4 entirely.
	reqs := mixedTrace(cfg, 200, 5, 10*sim.Microsecond)
	res := Run(cfg, reqs, 2)
	if err := res.Err(); err != nil {
		t.Fatalf("spareless run: %v", err)
	}
	r := res.RAS
	if r.LostWrites == 0 {
		t.Fatal("dead device with no spare should lose shard writes")
	}
	if r.RedirectedWrites != 0 {
		t.Fatalf("RedirectedWrites = %d with no spare", r.RedirectedWrites)
	}
	if r.FailedReads != 0 {
		t.Fatalf("FailedReads = %d", r.FailedReads)
	}
}

// Plan-level unit checks: exact counter accounting for the undetected
// window and the direct spare-read path.
func TestPlanUndetectedKillBurnsLadder(t *testing.T) {
	cfg := smallCfg()
	cfg.Failures = []fault.DeviceEvent{{Device: 0, At: 0}}
	cfg = cfg.WithDefaults()
	// One read whose data shard lives on dev 0: stripe 0 lane 0.
	reqs := []host.Request{{Arrival: 0, Kind: stats.Read, LPN: 0, Pages: 1}}
	p := BuildPlan(cfg, reqs)
	r := p.RAS
	if r.RouterRetries != int64(cfg.RetryMax) || r.RetryExhausted != 1 {
		t.Fatalf("undetected kill: retries=%d exhausted=%d", r.RouterRetries, r.RetryExhausted)
	}
	if r.DegradedReads != 1 || r.ReconstructionReads != int64(cfg.Data) {
		t.Fatalf("reconstruction accounting: %s", r)
	}
	// The reconstruction must not touch the dead device.
	if len(p.Device[0]) != 0 {
		t.Fatalf("dead device received %d ops", len(p.Device[0]))
	}
}

func TestPlanSpareReadAfterRebuild(t *testing.T) {
	cfg := smallCfg()
	cfg.RebuildPagesPerSec = 1_000_000_000 // rebuild everything at detection
	cfg.Failures = []fault.DeviceEvent{{Device: 0, At: 0}}
	cfg = cfg.WithDefaults()
	late := cfg.DetectLatency + sim.Time(cfg.StripesPerGroup()) + sim.Millisecond
	reqs := []host.Request{{Arrival: late, Kind: stats.Read, LPN: 0, Pages: 1}}
	p := BuildPlan(cfg, reqs)
	if p.RAS.SpareReads != 1 {
		t.Fatalf("SpareReads = %d, want 1 (rebuilt stripe serves from spare): %s", p.RAS.SpareReads, p.RAS)
	}
	spare := cfg.Groups * cfg.Width()
	foundRead := false
	for _, op := range p.Device[spare] {
		if op.Kind == stats.Read && op.LPN == 0 {
			foundRead = true
		}
	}
	if !foundRead {
		t.Fatal("spare trace has no read of the rebuilt shard")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero parity", func(c *Config) { c.Parity = 0 }},
		{"zero groups", func(c *Config) { c.Groups = 0 }},
		{"negative spares", func(c *Config) { c.Spares = -1 }},
		{"failure on spare", func(c *Config) {
			c.Failures = []fault.DeviceEvent{{Device: c.Groups * c.Width(), At: 0}}
		}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Validate did not panic", tc.name)
				}
			}()
			cfg := smallCfg()
			tc.mut(&cfg)
			cfg.Validate()
		}()
	}
}
