package array

import (
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Result is one array run's outcome.
type Result struct {
	// Metrics holds host-visible array-request latencies and throughput.
	Metrics *stats.IOMetrics
	// RAS is the router's reliability ledger.
	RAS *stats.ArrayRAS
	// RebuildTime is from first kill detection to the last rebuild spare
	// write's simulated completion; zero when no rebuild ran.
	RebuildTime sim.Time
	// SimTime is the latest device drain time.
	SimTime sim.Time
	// Incomplete counts array requests whose shard operations never all
	// completed — must stay zero on a healthy run.
	Incomplete int
	// Violations aggregates array-level invariant breaches plus any
	// per-device checker failures (only populated with cfg.Check).
	Violations []check.Violation
	// Devices exposes every member simulation for per-device digests
	// (GC counters, RAS, bus occupancy).
	Devices []*ssd.SSD
	// Telemetry is the array-level time-series summary, nil unless
	// cfg.Telemetry was set.
	Telemetry *telemetry.Summary
}

// Err returns an error when any invariant was violated or any request
// left incomplete.
func (r *Result) Err() error {
	if r.Incomplete > 0 {
		return fmt.Errorf("array: %d requests incomplete", r.Incomplete)
	}
	if len(r.Violations) > 0 {
		return fmt.Errorf("array: %d violation(s), first: %s", len(r.Violations), r.Violations[0])
	}
	return nil
}

// churnLPNs returns the deterministic churn sequence for one device —
// the same bounded overwrite pass exp.warm applies, but recorded so the
// content invariants know which LPNs carry the churn token. Seeded per
// device so groups don't churn in lockstep.
func churnLPNs(cfg Config, dev int) []int64 {
	if cfg.ChurnFraction <= 0 {
		return nil
	}
	foot := cfg.Device.LogicalPages()
	headroom := cfg.Device.RawPages() - foot
	churn := int64(float64(foot) * cfg.ChurnFraction)
	if limit := headroom / 2; churn > limit {
		churn = limit
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(dev)*1009))
	out := make([]int64, churn)
	for i := range out {
		out[i] = rng.Int63n(foot)
	}
	return out
}

// deviceOut is what each parallel device job returns.
type deviceOut struct {
	s     *ssd.SSD
	times []sim.Time
	end   sim.Time
}

// Run plans the array, simulates every member device (fanning out over
// `parallel` workers — each device is a fully independent simulation),
// reassembles array-level latencies, and evaluates the array
// invariants. Results are byte-identical at any parallelism: all
// routing was decided in BuildPlan and reassembly is an arithmetic join
// over per-device completion times.
func Run(cfg Config, reqs []host.Request, parallel int) *Result {
	cfg = cfg.WithDefaults()
	plan := BuildPlan(cfg, reqs)
	return RunPlanned(cfg, plan, parallel)
}

// RunPlanned executes a pre-built plan (the split exists so benchmarks
// can measure planning and simulation separately).
func RunPlanned(cfg Config, plan *Plan, parallel int) *Result {
	cfg = cfg.WithDefaults()
	label := func(dev int) string {
		role := "coded"
		if dev >= cfg.Groups*cfg.Width() {
			role = "spare"
		}
		return fmt.Sprintf("%s dev%d %s/%d+%d", role, dev, cfg.Arch, cfg.Data, cfg.Parity)
	}
	outs := runner.MapLabeled(parallel, cfg.Devices(), label, func(dev int) deviceOut {
		dcfg := cfg.Device
		if cfg.Check {
			dcfg.Check = &check.Config{}
		}
		if cfg.Trace != nil {
			tc := *cfg.Trace
			tc.TrackPrefix = fmt.Sprintf("dev%d/", dev)
			dcfg.Trace = &tc
		}
		s := ssd.New(cfg.Arch, dcfg)
		foot := s.Config.LogicalPages()
		s.Host.Warmup(foot)
		for _, lpn := range churnLPNs(cfg, dev) {
			s.FTL.Reinstall(lpn, ftl.TokenFor(lpn, 1))
		}
		times := s.Host.MustReplayTimed(plan.Device[dev])
		end := s.Engine.Run()
		return deviceOut{s: s, times: times, end: end}
	})

	res := &Result{
		Metrics: stats.NewIOMetrics(),
		RAS:     plan.RAS,
		Devices: make([]*ssd.SSD, len(outs)),
	}
	var ck *check.ArrayChecker
	if cfg.Check {
		ck = check.NewArrayChecker(0)
	}
	for dev, o := range outs {
		res.Devices[dev] = o.s
		if o.end > res.SimTime {
			res.SimTime = o.end
		}
	}

	// Array-level telemetry is fed from the same joined completion
	// times the metrics use, in plan order — deterministic regardless
	// of device parallelism.
	var col *telemetry.Collector
	if cfg.Telemetry != nil {
		col = telemetry.New(*cfg.Telemetry)
	}

	// Reassemble: an array request completes when the last of its shard
	// operations does (never earlier than its issue floor), plus the
	// reconstruction tail and the fixed route overhead.
	for i, pr := range plan.reqs {
		complete := sim.Time(0)
		ok := true
		for _, pg := range pr.pages {
			pc := pg.floor
			for _, op := range pg.ops {
				at := outs[op.dev].times[op.idx]
				if at < 0 {
					ok = false
					break
				}
				if at > pc {
					pc = at
				}
			}
			if !ok {
				break
			}
			if pc+pg.tail > complete {
				complete = pc + pg.tail
			}
		}
		if !ok {
			res.Incomplete++
			continue
		}
		complete += cfg.RouteLatency
		res.Metrics.Record(pr.kind, pr.arrival, complete, pr.bytes)
		col.RecordCompletion(pr.kind, pr.arrival, complete, pr.bytes)
		ck.Ack(int64(i), complete)
	}

	// Rebuild time: detection to the last rebuild write's completion.
	for _, op := range plan.rebuildOps {
		if at := outs[op.dev].times[op.idx]; at >= 0 {
			col.RebuildPage(at)
			if at-plan.detectAt > res.RebuildTime {
				res.RebuildTime = at - plan.detectAt
			}
		}
	}
	if col.Enabled() {
		if len(plan.rebuildOps) > 0 {
			col.AddMark("rebuild-detect", plan.detectAt)
			col.AddMark("rebuild-complete", plan.detectAt+res.RebuildTime)
		}
		res.Telemetry = col.Summary(res.SimTime)
	}

	if cfg.Check {
		res.Violations = verify(cfg, plan, outs, ck, res.SimTime)
	}
	return res
}

// verify evaluates the array invariants against the drained devices.
func verify(cfg Config, plan *Plan, outs []deviceOut, ck *check.ArrayChecker, at sim.Time) []check.Violation {
	var vs []check.Violation

	// Per-device invariants first: each member's own checker already
	// audited bus legality, page conservation, and drain cleanliness.
	for dev, o := range outs {
		if err := o.s.VerifyInvariants(); err != nil {
			vs = append(vs, check.Violation{Time: at, Rule: fmt.Sprintf("device-%d", dev), Detail: err.Error()})
		}
	}

	// Expected shard content: churn then host writes, matching the
	// host's own version accounting (first host write is version 1, the
	// same token churn installs).
	churned := make([]map[int64]bool, cfg.Devices())
	for dev := range churned {
		churned[dev] = make(map[int64]bool)
		for _, lpn := range churnLPNs(cfg, dev) {
			churned[dev][lpn] = true
		}
	}
	expected := func(dev int, lpn int64) flash.Token {
		if n := plan.writes[dev][lpn]; n > 0 {
			return ftl.TokenFor(lpn, n)
		}
		if churned[dev][lpn] {
			return ftl.TokenFor(lpn, 1)
		}
		return ftl.TokenFor(lpn, 0)
	}
	probe := func(dev int, lpn int64) (flash.Token, bool) {
		s := outs[dev].s
		id, addr, ok := s.FTL.Map(lpn)
		if !ok {
			return 0, false
		}
		chip := s.Grid.Chip(id)
		if chip.PageStateAt(addr) != flash.PageProgrammed {
			return 0, false
		}
		return chip.ContentAt(addr), true
	}
	// shardOK: the lane's shard is readable and current — on its home
	// device when that device survived, or on the fresh spare copy when
	// it did not.
	horizon := at
	shardOK := func(group int) func(stripe int64, lane int) bool {
		return func(stripe int64, lane int) bool {
			s := cfg.shardAt(group, stripe, lane)
			dev := s.dev
			if plan.sched.DeadAt(dev, horizon) {
				spare, fresh := plan.spareFreshAt(dev, s.lpn, horizon)
				if !fresh {
					return false
				}
				dev = spare
			}
			got, ok := probe(dev, s.lpn)
			return ok && got == expected(dev, s.lpn)
		}
	}
	for g := 0; g < cfg.Groups; g++ {
		ck.CheckStripeConservation(cfg.StripesPerGroup(), cfg.Width(), cfg.Data, shardOK(g), at)
	}

	// Rebuild completeness: with the scheduler on, every stripe of a
	// spared kill must be re-protected by drain.
	if cfg.RebuildPagesPerSec > 0 {
		for _, k := range plan.sched.Kills() {
			spare, ok := plan.spareOf[k.Device]
			if !ok {
				continue
			}
			ck.CheckRebuildComplete(cfg.StripesPerGroup(), func(stripe int64) bool {
				_, fresh := plan.fresh[spare][stripe]
				return fresh
			}, at)
		}
	}

	ck.CheckAllAcked(int64(len(plan.reqs)), at)
	plan.RAS.DoubleAcks = ck.DoubleAcks()
	return append(vs, ck.Violations()...)
}
