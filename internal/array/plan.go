package array

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/stats"
)

// opRef names one operation inside one device's planned trace.
type opRef struct {
	dev, idx int
}

// planPage is the shard fan-out of one page of one array request: the
// device operations whose completions it joins on, the earliest time it
// can complete (its latest issue time — retries and deferrals push it
// out), and the latency added after the join (reconstruction decode).
type planPage struct {
	ops   []opRef
	floor sim.Time
	tail  sim.Time
}

// planReq is one array request after routing.
type planReq struct {
	arrival sim.Time
	kind    stats.IOKind
	bytes   int64
	pages   []planPage
}

// Plan is the router's complete, pre-computed account of one array run:
// per-device open-loop traces, the join structure that reassembles
// array-level latencies, the rebuild schedule, and the RAS counters the
// routing decisions produced. Everything here derives from the
// configuration, failure schedule, and foreground trace alone — never
// from simulated device timing — which is what lets the devices
// simulate independently in parallel with byte-identical results.
type Plan struct {
	cfg   Config
	sched *fault.DeviceSchedule

	// Device holds the per-device open-loop traces Run replays.
	Device [][]host.Request
	reqs   []planReq

	// RAS counts every routing decision; Run adds nothing to it.
	RAS *stats.ArrayRAS

	// spareOf maps a killed device to its assigned spare, in kill order.
	spareOf map[int]int
	// fresh[spare][lpn] is the earliest time the spare holds a current
	// copy of that shard — from a redirected foreground write or a
	// rebuild job — after which reads of the dead shard go straight to
	// the spare.
	fresh map[int]map[int64]sim.Time
	// writes[dev][lpn] counts host writes routed to the device, the
	// version record the content invariants check against.
	writes []map[int64]int64
	// rebuildOps are the spare writes the rebuild scheduler issued;
	// their simulated completions bound the rebuild time.
	rebuildOps []opRef
	// detectAt is the earliest kill detection, the rebuild clock's zero.
	detectAt sim.Time
}

// ladderWait sums the full retry ladder: attempt i waits backoff<<(i-1).
func ladderWait(backoff sim.Time, max int) sim.Time {
	var w sim.Time
	for i := 0; i < max; i++ {
		w += backoff << uint(i)
	}
	return w
}

// BuildPlan routes a foreground trace of array-level requests. Requests
// must use array LPNs in [0, cfg.LogicalPages()); multi-page requests
// are expanded page by page, each page joining on its own shard set.
func BuildPlan(cfg Config, reqs []host.Request) *Plan {
	cfg = cfg.WithDefaults()
	cfg.Validate()
	p := &Plan{
		cfg:     cfg,
		sched:   fault.NewDeviceSchedule(cfg.Failures),
		Device:  make([][]host.Request, cfg.Devices()),
		RAS:     stats.NewArrayRAS(),
		spareOf: make(map[int]int),
		fresh:   make(map[int]map[int64]sim.Time),
		writes:  make([]map[int64]int64, cfg.Devices()),
	}
	for i := range p.writes {
		p.writes[i] = make(map[int64]int64)
	}

	// Spare assignment: kills claim spares in (time, device) order.
	kills := p.sched.Kills()
	p.RAS.DeviceKills = int64(len(kills))
	p.RAS.TransientOutages = int64(p.sched.Outages())
	for i, k := range kills {
		if i < cfg.Spares {
			p.spareOf[k.Device] = cfg.Groups*cfg.Width() + i
		}
	}
	p.detectAt = -1
	for _, k := range kills {
		if d := k.At + cfg.DetectLatency; p.detectAt < 0 || d < p.detectAt {
			p.detectAt = d
		}
	}

	// Pass A: the redirect map. Scan foreground writes for shards whose
	// home device is dead at issue time and record when their redirected
	// copies land on the spare, without counting or emitting anything —
	// the rebuild scheduler needs this to skip stripes a foreground
	// write already re-protected.
	redirectAt := make(map[int]map[int64]sim.Time)
	p.eachShardWrite(reqs, func(s shard, at sim.Time) {
		t0 := p.deferPast(s.dev, at)
		if !p.sched.DeadAt(s.dev, t0) {
			return
		}
		spare, ok := p.spareOf[s.dev]
		if !ok {
			return
		}
		m := redirectAt[spare]
		if m == nil {
			m = make(map[int64]sim.Time)
			redirectAt[spare] = m
		}
		if prev, ok := m[s.lpn]; !ok || t0 < prev {
			m[s.lpn] = t0
		}
	})

	// Pass B: the rebuild schedule. One open-loop job per lost stripe,
	// throttled to RebuildPagesPerSec, starting at detection: m survivor
	// reads plus one spare write, unless a redirected write already
	// re-protected the stripe before the job's slot ("skip-if-fresh").
	if cfg.RebuildPagesPerSec > 0 {
		interval := sim.Second / sim.Time(cfg.RebuildPagesPerSec)
		if interval < 1 {
			interval = 1
		}
		for _, k := range kills {
			spare, ok := p.spareOf[k.Device]
			if !ok {
				continue
			}
			g := k.Device / cfg.Width()
			start := k.At + cfg.DetectLatency
			for s := int64(0); s < cfg.StripesPerGroup(); s++ {
				at := start + sim.Time(s)*interval
				if r, ok := redirectAt[spare][s]; ok && r <= at {
					p.RAS.RebuildSkipped++
					p.freshen(spare, s, r)
					continue
				}
				lost := cfg.laneOf(k.Device%cfg.Width(), s)
				ops, full := p.survivorReads(g, s, lost, at)
				if !full {
					// Fewer than m live shards: the stripe is not
					// rebuildable; the conservation check will flag it.
					continue
				}
				p.RAS.RebuildReads += int64(len(ops))
				w := p.push(spare, host.Request{Arrival: at, Kind: stats.Write, LPN: s, Pages: 1})
				p.writes[spare][s]++
				p.rebuildOps = append(p.rebuildOps, w)
				p.RAS.RebuildPages++
				p.freshen(spare, s, at)
			}
		}
	}

	// Redirected writes also freshen the spare for the read path.
	for spare, m := range redirectAt {
		for lpn, at := range m {
			p.freshen(spare, lpn, at)
		}
	}

	// Pass C: route the foreground trace.
	for _, r := range reqs {
		pr := planReq{
			arrival: r.Arrival,
			kind:    r.Kind,
			bytes:   int64(r.Pages) * int64(cfg.Device.Geometry.PageSize),
		}
		for pg := 0; pg < r.Pages; pg++ {
			a := (r.LPN + int64(pg)) % cfg.LogicalPages()
			g, t, lane := cfg.locate(a)
			if r.Kind == stats.Read {
				pr.pages = append(pr.pages, p.routeRead(g, t, lane, r.Arrival))
			} else {
				pr.pages = append(pr.pages, p.routeWrite(g, t, lane, r.Arrival))
			}
		}
		p.reqs = append(p.reqs, pr)
	}
	return p
}

// push appends one operation to a device trace and returns its handle.
func (p *Plan) push(dev int, r host.Request) opRef {
	p.Device[dev] = append(p.Device[dev], r)
	return opRef{dev, len(p.Device[dev]) - 1}
}

func (p *Plan) freshen(spare int, lpn int64, at sim.Time) {
	m := p.fresh[spare]
	if m == nil {
		m = make(map[int64]sim.Time)
		p.fresh[spare] = m
	}
	if prev, ok := m[lpn]; !ok || at < prev {
		m[lpn] = at
	}
}

// spareFreshAt reports whether dev's shard lpn has a current copy on a
// spare by time t, and which spare.
func (p *Plan) spareFreshAt(dev int, lpn int64, t sim.Time) (int, bool) {
	spare, ok := p.spareOf[dev]
	if !ok {
		return 0, false
	}
	at, ok := p.fresh[spare][lpn]
	return spare, ok && at <= t
}

// deferPast pushes a write's issue time past any transient outage the
// device is inside at time t.
func (p *Plan) deferPast(dev int, t sim.Time) sim.Time {
	if until, out := p.sched.UnavailableAt(dev, t); out {
		return until
	}
	return t
}

// eachShardWrite visits every shard-level write the foreground trace
// implies — the data lane plus every parity lane of each written page.
func (p *Plan) eachShardWrite(reqs []host.Request, visit func(s shard, at sim.Time)) {
	cfg := p.cfg
	for _, r := range reqs {
		if r.Kind != stats.Write {
			continue
		}
		for pg := 0; pg < r.Pages; pg++ {
			a := (r.LPN + int64(pg)) % cfg.LogicalPages()
			g, t, lane := cfg.locate(a)
			visit(cfg.shardAt(g, t, lane), r.Arrival)
			for par := 0; par < cfg.Parity; par++ {
				visit(cfg.shardAt(g, t, cfg.Data+par), r.Arrival)
			}
		}
	}
}

// routeWrite routes one page write: the data shard plus every parity
// shard. A shard inside a transient window is deferred to the window's
// end; a shard on a dead device redirects to the mapped spare or, with
// no spare, is lost (the stripe stays readable via the survivors until
// more than k shards die).
func (p *Plan) routeWrite(g int, t int64, lane int, at sim.Time) planPage {
	cfg := p.cfg
	page := planPage{floor: at}
	lanes := make([]int, 0, 1+cfg.Parity)
	lanes = append(lanes, lane)
	for par := 0; par < cfg.Parity; par++ {
		lanes = append(lanes, cfg.Data+par)
	}
	for _, ln := range lanes {
		s := cfg.shardAt(g, t, ln)
		t0 := at
		if until, out := p.sched.UnavailableAt(s.dev, t0); out {
			p.RAS.DeferredWrites++
			t0 = until
		}
		target := s.dev
		if p.sched.DeadAt(s.dev, t0) {
			spare, ok := p.spareOf[s.dev]
			if !ok {
				p.RAS.LostWrites++
				continue
			}
			p.RAS.RedirectedWrites++
			target = spare
		}
		page.ops = append(page.ops, p.push(target, host.Request{Arrival: t0, Kind: stats.Write, LPN: s.lpn, Pages: 1}))
		p.writes[target][s.lpn]++
		if t0 > page.floor {
			page.floor = t0
		}
	}
	return page
}

// routeRead routes one page read against its data shard. The decision
// ladder: a rebuilt/redirected spare copy serves directly; a detected
// dead device reconstructs immediately; an undetected one burns the
// full retry ladder first; a transient outage retries with exponential
// backoff until the window ends or the ladder exhausts.
func (p *Plan) routeRead(g int, t int64, lane int, at sim.Time) planPage {
	cfg := p.cfg
	s := cfg.shardAt(g, t, lane)

	if p.sched.DeadAt(s.dev, at) {
		if spare, fresh := p.spareFreshAt(s.dev, s.lpn, at); fresh {
			p.RAS.SpareReads++
			op := p.push(spare, host.Request{Arrival: at, Kind: stats.Read, LPN: s.lpn, Pages: 1})
			return planPage{ops: []opRef{op}, floor: at}
		}
		killAt, _ := p.sched.KilledAt(s.dev)
		if at >= killAt+cfg.DetectLatency {
			return p.reconstructPage(g, t, lane, at)
		}
		// Undetected: every retry times out, then reconstruction.
		wait := ladderWait(cfg.RetryBackoff, cfg.RetryMax)
		p.RAS.RouterRetries += int64(cfg.RetryMax)
		p.RAS.RetryExhausted++
		return p.reconstructPage(g, t, lane, at+wait)
	}

	if until, out := p.sched.UnavailableAt(s.dev, at); out {
		var waited sim.Time
		for i := 0; i < cfg.RetryMax; i++ {
			waited += cfg.RetryBackoff << uint(i)
			p.RAS.RouterRetries++
			if at+waited >= until {
				op := p.push(s.dev, host.Request{Arrival: at + waited, Kind: stats.Read, LPN: s.lpn, Pages: 1})
				return planPage{ops: []opRef{op}, floor: at + waited}
			}
		}
		p.RAS.RetryExhausted++
		return p.reconstructPage(g, t, lane, at+waited)
	}

	op := p.push(s.dev, host.Request{Arrival: at, Kind: stats.Read, LPN: s.lpn, Pages: 1})
	return planPage{ops: []opRef{op}, floor: at}
}

// survivorReads issues reads of m surviving shards of stripe t (group
// g), excluding the lost lane, at time rt. Survivors inside a transient
// window are skipped rather than awaited; a dead survivor serves from
// its spare when the spare copy is fresh. Returns full=false when fewer
// than m shards are reachable.
func (p *Plan) survivorReads(g int, t int64, lost int, rt sim.Time) (ops []opRef, full bool) {
	cfg := p.cfg
	for ln := 0; ln < cfg.Width() && len(ops) < cfg.Data; ln++ {
		if ln == lost {
			continue
		}
		s := cfg.shardAt(g, t, ln)
		if p.sched.AvailableAt(s.dev, rt) {
			ops = append(ops, p.push(s.dev, host.Request{Arrival: rt, Kind: stats.Read, LPN: s.lpn, Pages: 1}))
			continue
		}
		if p.sched.DeadAt(s.dev, rt) {
			if spare, fresh := p.spareFreshAt(s.dev, s.lpn, rt); fresh {
				ops = append(ops, p.push(spare, host.Request{Arrival: rt, Kind: stats.Read, LPN: s.lpn, Pages: 1}))
			}
		}
	}
	return ops, len(ops) == cfg.Data
}

// reconstructPage degrades one page read into m surviving-shard reads
// joined by the decode latency. Fewer than m reachable shards is data
// loss: the page is counted failed and completes (as an error the host
// would see) after the route overhead alone.
func (p *Plan) reconstructPage(g int, t int64, lane int, rt sim.Time) planPage {
	ops, full := p.survivorReads(g, t, lane, rt)
	if !full {
		// The partial survivor reads stay in the plan — the router did
		// issue them before discovering the stripe is unrecoverable.
		p.RAS.ReconstructionReads += int64(len(ops))
		p.RAS.FailedReads++
		return planPage{ops: ops, floor: rt}
	}
	p.RAS.DegradedReads++
	p.RAS.ReconstructionReads += int64(len(ops))
	return planPage{ops: ops, floor: rt, tail: p.cfg.ReconstructLatency}
}

// Requests returns how many array requests the plan routed.
func (p *Plan) Requests() int { return len(p.reqs) }

// DeviceOps returns the total operation count across device traces —
// the unit the router-throughput benchmark reports.
func (p *Plan) DeviceOps() int {
	n := 0
	for _, t := range p.Device {
		n += len(t)
	}
	return n
}

// String summarizes the plan for logs.
func (p *Plan) String() string {
	return fmt.Sprintf("array plan: %d reqs -> %d device ops on %d devices, %s",
		len(p.reqs), p.DeviceOps(), len(p.Device), p.RAS)
}
