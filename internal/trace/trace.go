// Package trace is the simulator's observability subsystem: a
// deterministic event/span recorder keyed on sim.Time.
//
// A Recorder collects three kinds of data:
//
//   - Resource hold spans. Every sim.Resource the Recorder observes (bus
//     channels, flash dies, the NVMe link, the SoC system bus and DRAM)
//     reports each completed hold with its queue wait; the Recorder turns
//     them into one Chrome trace track per resource.
//   - Logical spans. Layers that know about requests — the host front
//     end, the FTL, the Omnibus control plane — bracket lifecycle phases
//     (a request from arrival to completion, a GC round, a grant
//     arbitration, a write stall) as async spans, and mark routing
//     decisions as instant events.
//   - Fixed-interval timelines. Per-track utilization and time-weighted
//     queue depth are accumulated into fixed windows, the data behind the
//     per-bus heatmap table and the paper's Fig 3-style analyses.
//
// Tracing is strictly passive: the Recorder never schedules events and
// never touches model state, so a traced run executes the identical event
// sequence as an untraced one. A nil *Recorder is a valid, disabled
// recorder — every method is nil-safe and the disabled paths are
// allocation-free — so model code holds plain *Recorder fields and calls
// them unconditionally.
package trace

import (
	"repro/internal/sim"
)

// DefaultWindow is the gauge-timeline interval when Config.Window is zero
// (matches the 500us window of the Fig 3 utilization heatmaps).
const DefaultWindow = 500 * sim.Microsecond

// Config parameterizes a Recorder.
type Config struct {
	// Window is the fixed interval of the utilization/queue-depth
	// timelines; zero selects DefaultWindow.
	Window sim.Time
	// QueueCounters, when set, additionally emits a Chrome counter event
	// on every queue-depth transition of every observed resource. The
	// timelines are always recorded; the per-transition counters make
	// queue dynamics visible in Perfetto at the cost of trace size.
	QueueCounters bool
	// TrackPrefix is prepended to every track name. Array runs trace many
	// devices whose internal resources share names ("nvme", "h0", die
	// grids); a per-device prefix like "dev3/" keeps the merged view
	// unambiguous without renaming any resource.
	TrackPrefix string
}

// Track kinds, used to group tracks in exports and heatmap tables.
const (
	KindHChannel = "h-channel"
	KindVChannel = "v-channel"
	KindChip     = "chip"
	KindSoc      = "soc"
	KindHost     = "host"
	KindTenant   = "tenant"
	KindOther    = "resource"
)

// Track is one timeline in the trace: a resource (bus, die, DRAM port) or
// a logical grouping.
type Track struct {
	Name string
	Kind string
	id   int
	tl   *Timeline
}

// Timeline returns the track's fixed-interval gauge timeline.
func (t *Track) Timeline() *Timeline { return t.tl }

// SpanID identifies an in-flight async span returned by BeginSpan. The
// zero value is inert: EndSpan of a zero SpanID is a no-op, so callers on
// disabled recorders need no guards.
type SpanID struct {
	id   uint64
	cat  string
	name string
	tid  int
}

// KV is one key/value argument attached to an event. Values must be
// JSON-marshalable; spans built on hot paths should only construct KVs
// inside an Enabled() guard.
type KV struct {
	K string
	V interface{}
}

// Recorder accumulates trace events for one simulation run.
type Recorder struct {
	eng    *sim.Engine
	window sim.Time
	qctr   bool
	prefix string

	events []event
	tracks map[string]*Track
	order  []string
	nextID uint64

	holds int64
	waits sim.Time
}

// New builds a Recorder bound to an engine.
func New(eng *sim.Engine, cfg Config) *Recorder {
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	return &Recorder{
		eng:    eng,
		window: w,
		qctr:   cfg.QueueCounters,
		prefix: cfg.TrackPrefix,
		tracks: make(map[string]*Track),
	}
}

// Enabled reports whether the recorder is live. It is the guard hot paths
// use before building event arguments.
func (r *Recorder) Enabled() bool { return r != nil }

// Window returns the gauge-timeline interval.
func (r *Recorder) Window() sim.Time {
	if r == nil {
		return 0
	}
	return r.window
}

// RegisterTrack declares a track up front so it appears in the export
// (with stable ordering) even if it never records an event — the
// guarantee behind "one track per h-channel, v-channel, and chip".
// Registering an existing name returns the existing track. The
// configured TrackPrefix is applied here, the single naming point, so
// every caller and every auto-registered resource agrees on the final
// name.
func (r *Recorder) RegisterTrack(name, kind string) *Track {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	if t, ok := r.tracks[name]; ok {
		return t
	}
	t := &Track{Name: name, Kind: kind, id: len(r.order) + 1, tl: NewTimeline(r.window)}
	r.tracks[name] = t
	r.order = append(r.order, name)
	return t
}

// track resolves a raw (unprefixed) name, auto-registering unknown
// resources.
func (r *Recorder) track(name string) *Track {
	if t, ok := r.tracks[r.prefix+name]; ok {
		return t
	}
	return r.RegisterTrack(name, KindOther)
}

// Tracks returns all tracks of one kind in registration order; an empty
// kind selects every track.
func (r *Recorder) Tracks(kind string) []*Track {
	if r == nil {
		return nil
	}
	var out []*Track
	for _, name := range r.order {
		t := r.tracks[name]
		if kind == "" || t.Kind == kind {
			out = append(out, t)
		}
	}
	return out
}

// ResourceHold implements sim.ResourceObserver: one complete event on the
// resource's track, with the queue wait attached when nonzero.
func (r *Recorder) ResourceHold(res *sim.Resource, label string, queuedAt, grantedAt, releasedAt sim.Time) {
	if r == nil {
		return
	}
	t := r.track(res.Name())
	t.tl.AddBusy(grantedAt, releasedAt)
	r.holds++
	ev := event{Name: label, Cat: "hold", Ph: phComplete, Ts: grantedAt, Dur: releasedAt - grantedAt, Tid: t.id}
	if wait := grantedAt - queuedAt; wait > 0 {
		r.waits += wait
		ev.Args = []KV{{K: "wait_us", V: wait.Microseconds()}}
	}
	r.events = append(r.events, ev)
}

// ResourceQueue implements sim.ResourceObserver: updates the track's
// queue-depth timeline and, when enabled, emits a counter event.
func (r *Recorder) ResourceQueue(res *sim.Resource, depth int, at sim.Time) {
	if r == nil {
		return
	}
	t := r.track(res.Name())
	t.tl.SetDepth(depth, at)
	if r.qctr {
		r.events = append(r.events, event{
			Name: t.Name + " queue", Cat: "queue", Ph: phCounter, Ts: at, Tid: t.id,
			Args: []KV{{K: "depth", V: depth}},
		})
	}
}

// BeginSpan opens an async span (a lifecycle phase not tied to one
// resource: a request, a GC round, a grant arbitration). The returned id
// must be passed to EndSpan; the zero SpanID from a disabled recorder is
// accepted and ignored there.
func (r *Recorder) BeginSpan(cat, name string, args ...KV) SpanID {
	if r == nil {
		return SpanID{}
	}
	r.nextID++
	id := SpanID{id: r.nextID, cat: cat, name: name}
	r.events = append(r.events, event{Name: name, Cat: cat, Ph: phAsyncBegin, Ts: r.eng.Now(), ID: id.id, Args: args})
	return id
}

// BeginSpanOn opens an async span pinned to a registered track's
// timeline row instead of the shared tid-0 row — the per-tenant request
// tracks of the multi-queue front end. A nil track (from a disabled
// recorder) falls back to BeginSpan's shared row.
func (r *Recorder) BeginSpanOn(t *Track, cat, name string, args ...KV) SpanID {
	if r == nil {
		return SpanID{}
	}
	if t == nil {
		return r.BeginSpan(cat, name, args...)
	}
	r.nextID++
	id := SpanID{id: r.nextID, cat: cat, name: name, tid: t.id}
	r.events = append(r.events, event{Name: name, Cat: cat, Ph: phAsyncBegin, Ts: r.eng.Now(), ID: id.id, Tid: t.id, Args: args})
	return id
}

// EndSpan closes an async span; args are attached to the end event.
func (r *Recorder) EndSpan(id SpanID, args ...KV) {
	if r == nil || id.id == 0 {
		return
	}
	r.events = append(r.events, event{Name: id.name, Cat: id.cat, Ph: phAsyncEnd, Ts: r.eng.Now(), ID: id.id, Tid: id.tid, Args: args})
}

// Instant marks a point event (a routing decision, a fault) at the
// current simulation time.
func (r *Recorder) Instant(cat, name string, args ...KV) {
	if r == nil {
		return
	}
	r.events = append(r.events, event{Name: name, Cat: cat, Ph: phInstant, Ts: r.eng.Now(), Args: args})
}

// Events returns the number of events recorded so far.
func (r *Recorder) Events() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Holds returns the number of resource holds observed and their total
// queue wait.
func (r *Recorder) Holds() (int64, sim.Time) {
	if r == nil {
		return 0, 0
	}
	return r.holds, r.waits
}

// BusyTotals returns, per track of the given kind, the summed busy time
// recorded on that track — the quantity the export equivalence test
// compares against each channel's own TotalBusy accounting.
func (r *Recorder) BusyTotals(kind string) map[string]sim.Time {
	if r == nil {
		return nil
	}
	out := make(map[string]sim.Time)
	for _, t := range r.Tracks(kind) {
		out[t.Name] = t.tl.TotalBusy()
	}
	return out
}

// HeatRows returns the per-track utilization series of one kind, padded
// to a common width covering [0, end) — ready for report.Heat rendering.
// Track order is registration order; names parallel rows.
func (r *Recorder) HeatRows(kind string, end sim.Time) (names []string, rows [][]float64) {
	if r == nil {
		return nil, nil
	}
	tracks := r.Tracks(kind)
	width := 0
	if r.window > 0 && end > 0 {
		width = int((end + r.window - 1) / r.window)
	}
	for _, t := range tracks {
		row := t.tl.UtilSeries()
		if len(row) > width {
			width = len(row)
		}
		names = append(names, t.Name)
		rows = append(rows, row)
	}
	for i := range rows {
		for len(rows[i]) < width {
			rows[i] = append(rows[i], 0)
		}
	}
	return names, rows
}
