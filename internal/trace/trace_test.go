package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestNilRecorderIsInert verifies the disabled path: every exported method
// must be safe on a nil *Recorder, because the whole simulator calls them
// unconditionally through nil-receiver dispatch.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	r.ResourceHold(nil, "x", 0, 0, 0)
	r.ResourceQueue(nil, 1, 0)
	id := r.BeginSpan("cat", "name")
	if id != (SpanID{}) {
		t.Fatalf("nil BeginSpan returned live id %+v", id)
	}
	r.EndSpan(id)
	r.Instant("cat", "name")
	if r.Events() != 0 {
		t.Fatal("nil recorder counted events")
	}
	if h, w := r.Holds(); h != 0 || w != 0 {
		t.Fatal("nil recorder counted holds")
	}
	var buf bytes.Buffer
	if err := r.ExportChrome(&buf); err != nil {
		t.Fatalf("nil ExportChrome: %v", err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil export is not JSON: %v", err)
	}
}

func TestTimelineBusyWindowing(t *testing.T) {
	win := 10 * sim.Microsecond
	tl := NewTimeline(win)
	// A hold spanning windows 0..2: [5us, 25us) = 5us in w0, 10us in w1, 5us in w2.
	tl.AddBusy(5*sim.Microsecond, 25*sim.Microsecond)
	series := tl.UtilSeries()
	want := []float64{0.5, 1.0, 0.5}
	if len(series) != len(want) {
		t.Fatalf("series length %d, want %d", len(series), len(want))
	}
	for i, v := range want {
		if series[i] != v {
			t.Fatalf("window %d utilization %v, want %v", i, series[i], v)
		}
	}
	if tl.TotalBusy() != 20*sim.Microsecond {
		t.Fatalf("TotalBusy %v, want 20us", tl.TotalBusy())
	}
}

func TestTimelineQueueIntegral(t *testing.T) {
	win := 10 * sim.Microsecond
	tl := NewTimeline(win)
	tl.SetDepth(2, 0)                  // depth 2 over [0, 5us)
	tl.SetDepth(0, 5*sim.Microsecond)  // depth 0 over [5us, 20us)
	tl.SetDepth(4, 20*sim.Microsecond) // depth 4 over [20us, 25us)
	series := tl.QueueSeries(25 * sim.Microsecond)
	// w0: 2*5us/10us = 1.0 mean depth; w1: 0; w2: 4*5us/10us = 2.0.
	want := []float64{1.0, 0.0, 2.0}
	if len(series) != len(want) {
		t.Fatalf("series length %d, want %d", len(series), len(want))
	}
	for i, v := range want {
		if series[i] != v {
			t.Fatalf("window %d mean depth %v, want %v", i, series[i], v)
		}
	}
	// QueueSeries must not mutate state: calling again gives the same answer.
	again := tl.QueueSeries(25 * sim.Microsecond)
	for i := range want {
		if again[i] != series[i] {
			t.Fatal("QueueSeries mutated the timeline")
		}
	}
}

// newTestRecorder builds a recorder with its own engine.
func newTestRecorder(cfg Config) (*sim.Engine, *Recorder) {
	eng := sim.NewEngine()
	return eng, New(eng, cfg)
}

func TestRecorderHoldsAndHeatRows(t *testing.T) {
	eng, rec := newTestRecorder(Config{Window: 10 * sim.Microsecond})
	_ = eng
	rec.RegisterTrack("h0", KindHChannel)
	rec.RegisterTrack("h1", KindHChannel)
	res := sim.NewResource(sim.NewEngine(), "h0")
	rec.ResourceHold(res, "xfer", 0, 0, 15*sim.Microsecond)
	rec.ResourceHold(res, "xfer", 20*sim.Microsecond, 30*sim.Microsecond, 35*sim.Microsecond)

	holds, waits := rec.Holds()
	if holds != 2 {
		t.Fatalf("holds = %d, want 2", holds)
	}
	if waits != 10*sim.Microsecond {
		t.Fatalf("wait total %v, want 10us", waits)
	}
	busy := rec.BusyTotals(KindHChannel)
	if busy["h0"] != 20*sim.Microsecond {
		t.Fatalf("h0 busy %v, want 20us", busy["h0"])
	}
	names, rows := rec.HeatRows(KindHChannel, 40*sim.Microsecond)
	if len(names) != 2 || names[0] != "h0" || names[1] != "h1" {
		t.Fatalf("HeatRows names %v", names)
	}
	// 40us end with 10us windows: all rows padded to 4 columns.
	for i, row := range rows {
		if len(row) != 4 {
			t.Fatalf("row %d (%s) has %d windows, want 4", i, names[i], len(row))
		}
	}
	if rows[0][0] != 1.0 || rows[0][1] != 0.5 {
		t.Fatalf("h0 series %v, want [1.0 0.5 ...]", rows[0])
	}
	for _, v := range rows[1] {
		if v != 0 {
			t.Fatal("idle track h1 has nonzero utilization")
		}
	}
}

func TestExportChromeStructure(t *testing.T) {
	_, rec := newTestRecorder(Config{Window: 10 * sim.Microsecond})
	rec.RegisterTrack("h0", KindHChannel)
	res := sim.NewResource(sim.NewEngine(), "h0")
	rec.ResourceHold(res, "xfer", 0, 2*sim.Microsecond, 5*sim.Microsecond)
	id := rec.BeginSpan("req", "read", KV{"lpn", 42})
	rec.Instant("route", "v-return")
	rec.EndSpan(id, KV{"pages", 1})

	var buf bytes.Buffer
	if err := rec.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   float64         `json:"ts"`
			Dur  *float64        `json:"dur"`
			Tid  int             `json:"tid"`
			ID   string          `json:"id"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e.Ph]++
	}
	if phases["M"] < 2 {
		t.Fatalf("want process+thread metadata, got %d M events", phases["M"])
	}
	if phases["X"] != 1 || phases["b"] != 1 || phases["e"] != 1 || phases["i"] != 1 {
		t.Fatalf("phase counts %v", phases)
	}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur != 3.0 {
				t.Fatalf("complete event dur %v, want 3us", e.Dur)
			}
			if e.Ts != 2.0 {
				t.Fatalf("complete event ts %v, want 2us (granted time)", e.Ts)
			}
		case "b", "e":
			if !strings.HasPrefix(e.ID, "0x") {
				t.Fatalf("async event id %q not hex", e.ID)
			}
		}
	}
}

func TestSpanIDsPairUp(t *testing.T) {
	_, rec := newTestRecorder(Config{})
	a := rec.BeginSpan("req", "read")
	b := rec.BeginSpan("req", "write")
	if a == b {
		t.Fatal("distinct spans share an id")
	}
	rec.EndSpan(b)
	rec.EndSpan(a)
	rec.EndSpan(SpanID{}) // zero value must be a no-op
	var buf bytes.Buffer
	if err := rec.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	type ev struct {
		Ph string `json:"ph"`
		ID string `json:"id"`
	}
	var doc struct {
		TraceEvents []ev `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	begins, ends := map[string]int{}, map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "b" {
			begins[e.ID]++
		}
		if e.Ph == "e" {
			ends[e.ID]++
		}
	}
	if len(begins) != 2 || len(ends) != 2 {
		t.Fatalf("begin ids %v end ids %v", begins, ends)
	}
	for id := range begins {
		if ends[id] != begins[id] {
			t.Fatalf("span %s unbalanced: %d begins, %d ends", id, begins[id], ends[id])
		}
	}
}

// A TrackPrefix must apply at every naming point — explicit
// registration, auto-registration from a resource hold, and repeat
// registration must all resolve to the same prefixed track.
func TestTrackPrefixAppliesEverywhere(t *testing.T) {
	eng, rec := newTestRecorder(Config{TrackPrefix: "dev3/"})
	rec.RegisterTrack("h0", KindHChannel)
	if tr := rec.Tracks(KindHChannel); len(tr) != 1 || tr[0].Name != "dev3/h0" {
		t.Fatalf("registered tracks: %+v", tr)
	}
	// Registering the raw name again must not mint a second track.
	rec.RegisterTrack("h0", KindHChannel)
	if tr := rec.Tracks(KindHChannel); len(tr) != 1 {
		t.Fatalf("re-registration duplicated the track: %+v", tr)
	}
	// Auto-registration through an observer callback sees the raw
	// resource name and must land on the prefixed track.
	res := sim.NewResource(eng, "nvme")
	rec.ResourceHold(res, "hold", 0, 0, sim.Microsecond)
	if tr := rec.Tracks(KindOther); len(tr) != 1 || tr[0].Name != "dev3/nvme" {
		t.Fatalf("auto-registered tracks: %+v", tr)
	}
	rec.ResourceHold(res, "hold", sim.Microsecond, sim.Microsecond, 2*sim.Microsecond)
	if tr := rec.Tracks(""); len(tr) != 2 {
		t.Fatalf("repeat hold duplicated a track: %+v", tr)
	}
}

func TestAutoRegisteredTrackGetsOtherKind(t *testing.T) {
	_, rec := newTestRecorder(Config{})
	res := sim.NewResource(sim.NewEngine(), "mystery")
	rec.ResourceHold(res, "hold", 0, 0, sim.Microsecond)
	tracks := rec.Tracks(KindOther)
	if len(tracks) != 1 || tracks[0].Name != "mystery" {
		t.Fatalf("auto-registered tracks: %+v", tracks)
	}
}
