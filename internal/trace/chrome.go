package trace

import (
	"bufio"
	"encoding/json"
	"io"

	"repro/internal/sim"
)

// Chrome trace-event phase codes (the "ph" field).
const (
	phComplete   = "X" // resource hold: ts + dur on a track
	phAsyncBegin = "b" // logical span open (request, GC round, grant wait)
	phAsyncEnd   = "e" // logical span close
	phInstant    = "i" // point event (routing decision, fault)
	phCounter    = "C" // gauge sample (queue depth)
)

// event is one recorded trace event, held in simulator units and
// converted to Chrome's microsecond timebase only at export.
type event struct {
	Name string
	Cat  string
	Ph   string
	Ts   sim.Time
	Dur  sim.Time
	Tid  int
	ID   uint64
	Args []KV
}

// chromeEvent is the JSON wire form of one trace event.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	ID   string                 `json:"id,omitempty"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromePid is the single process id all tracks live under.
const chromePid = 1

// usec converts a simulation time to Chrome's microsecond float timebase.
func usec(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// ExportChrome writes the recorded trace as Chrome trace-event JSON
// (the {"traceEvents": [...]} object form), loadable in Perfetto and
// chrome://tracing. Metadata naming every registered track is emitted
// first, so idle h-channels, v-channels, and chips still appear as
// (empty) tracks. Logical async spans ("b"/"e") live on tid 0.
func (r *Recorder) ExportChrome(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"displayTimeUnit":"ms","traceEvents":[`+"\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := io.WriteString(bw, ","); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(ce) // Encode appends the row's newline
	}

	// Track metadata: process name, then one thread per track with a
	// sort index preserving registration order.
	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]interface{}{"name": "pssdsim"}}); err != nil {
		return err
	}
	for _, name := range r.order {
		t := r.tracks[name]
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: t.id,
			Args: map[string]interface{}{"name": t.Kind + " " + t.Name}}); err != nil {
			return err
		}
		if err := emit(chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: chromePid, Tid: t.id,
			Args: map[string]interface{}{"sort_index": t.id}}); err != nil {
			return err
		}
	}

	for i := range r.events {
		ev := &r.events[i]
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   ev.Ph,
			Ts:   usec(ev.Ts),
			Pid:  chromePid,
			Tid:  ev.Tid,
		}
		switch ev.Ph {
		case phComplete:
			d := usec(ev.Dur)
			ce.Dur = &d
		case phAsyncBegin, phAsyncEnd:
			ce.ID = formatID(ev.ID)
		case phInstant:
			ce.S = "t" // thread-scoped instant
		}
		if len(ev.Args) > 0 {
			args := make(map[string]interface{}, len(ev.Args))
			for _, kv := range ev.Args {
				args[kv.K] = kv.V
			}
			ce.Args = args
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// CounterSeries appends one Perfetto counter track: a "C"-phase sample
// per window, named name, with the value keyed by unit in the args.
// Sample i sits at the start of window i. Perfetto groups counter
// events by (pid, name), so every series becomes its own counter lane
// under the process, alongside the span tracks. Nil-safe.
func (r *Recorder) CounterSeries(name, unit string, window sim.Time, values []float64) {
	if r == nil {
		return
	}
	for i, v := range values {
		r.events = append(r.events, event{
			Name: name,
			Cat:  "telemetry",
			Ph:   phCounter,
			Ts:   window * sim.Time(i),
			Args: []KV{{K: unit, V: v}},
		})
	}
}

// formatID renders an async span id as the hex string Chrome expects.
func formatID(id uint64) string {
	const digits = "0123456789abcdef"
	if id == 0 {
		return "0x0"
	}
	var buf [18]byte
	i := len(buf)
	for id > 0 {
		i--
		buf[i] = digits[id&0xf]
		id >>= 4
	}
	i -= 2
	buf[i], buf[i+1] = '0', 'x'
	return string(buf[i:])
}
