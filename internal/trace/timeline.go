package trace

import "repro/internal/sim"

// Timeline accumulates two fixed-interval gauges for one track: busy time
// per window (→ utilization) and the time integral of queue depth per
// window (→ mean queue depth). It is fed passively from observer
// callbacks — no sampling events are scheduled — so it exists outside the
// simulation's event stream.
type Timeline struct {
	window  sim.Time
	busyPer []sim.Time
	total   sim.Time

	depthPer []sim.Time // ∫ depth dt per window, in depth·picoseconds
	curDepth int
	depthAt  sim.Time
}

// NewTimeline creates an empty timeline with the given window width.
func NewTimeline(window sim.Time) *Timeline {
	if window <= 0 {
		panic("trace: non-positive timeline window")
	}
	return &Timeline{window: window}
}

// Window returns the window width.
func (t *Timeline) Window() sim.Time { return t.window }

// AddBusy credits the busy interval [from, to) across the windows it
// overlaps.
func (t *Timeline) AddBusy(from, to sim.Time) {
	if to < from {
		panic("trace: inverted busy interval")
	}
	t.total += to - from
	for from < to {
		w := int(from / t.window)
		for w >= len(t.busyPer) {
			t.busyPer = append(t.busyPer, 0)
		}
		end := sim.Time(w+1) * t.window
		if end > to {
			end = to
		}
		t.busyPer[w] += end - from
		from = end
	}
}

// SetDepth records a queue-depth transition at the given time: the
// previous depth is integrated over the elapsed interval, then the new
// depth takes effect.
func (t *Timeline) SetDepth(depth int, at sim.Time) {
	t.integrateDepth(at)
	t.curDepth = depth
}

// integrateDepth spreads curDepth over [depthAt, to) into depthPer and
// advances depthAt.
func (t *Timeline) integrateDepth(to sim.Time) {
	from := t.depthAt
	if to < from {
		panic("trace: queue-depth time went backwards")
	}
	t.depthAt = to
	if t.curDepth == 0 {
		return
	}
	d := sim.Time(t.curDepth)
	for from < to {
		w := int(from / t.window)
		for w >= len(t.depthPer) {
			t.depthPer = append(t.depthPer, 0)
		}
		end := sim.Time(w+1) * t.window
		if end > to {
			end = to
		}
		t.depthPer[w] += d * (end - from)
		from = end
	}
}

// TotalBusy returns the summed busy time over all windows.
func (t *Timeline) TotalBusy() sim.Time { return t.total }

// UtilSeries returns per-window utilization in [0,1], one entry per
// window from time zero through the last busy interval recorded.
func (t *Timeline) UtilSeries() []float64 {
	out := make([]float64, len(t.busyPer))
	for i, b := range t.busyPer {
		out[i] = float64(b) / float64(t.window)
	}
	return out
}

// QueueSeries returns the mean queue depth per window through end. The
// still-open depth interval is included without mutating the timeline.
func (t *Timeline) QueueSeries(end sim.Time) []float64 {
	width := len(t.depthPer)
	if t.window > 0 && end > 0 {
		if w := int((end + t.window - 1) / t.window); w > width {
			width = w
		}
	}
	per := make([]sim.Time, width)
	copy(per, t.depthPer)
	// Fold in the open interval [depthAt, end) at curDepth.
	if t.curDepth > 0 && end > t.depthAt {
		d, from := sim.Time(t.curDepth), t.depthAt
		for from < end {
			w := int(from / t.window)
			if w >= len(per) {
				break
			}
			stop := sim.Time(w+1) * t.window
			if stop > end {
				stop = end
			}
			per[w] += d * (stop - from)
			from = stop
		}
	}
	out := make([]float64, len(per))
	for i, v := range per {
		out[i] = float64(v) / float64(t.window)
	}
	return out
}
